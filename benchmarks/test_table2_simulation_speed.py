"""Experiment T2 — Table II: simulation speed (MIPS) per interface.

Paper (Alpha column): Block/Min/No 37.8 ... Step/All/Yes 2.62, a 14.4x
spread.  Absolute MIPS are not comparable (CPython vs compiled LLVM
translation on a 2 GHz Opteron); the properties to reproduce are the
*orderings* and the overall spread:

* semantic detail dominates: Block > One > Step at equal information;
* informational detail costs: Min >= Decode >= All at equal semantics;
* speculation support always costs something;
* the lowest-detail interface is many times faster than the
  highest-detail one.
"""

import os

import pytest

from repro.harness import (
    INTERFACE_GRID,
    bench_scale,
    measure_buildset,
    render_table,
    table2,
)

from conftest import ISAS

#: CI's bench-smoke job restricts the grid (e.g. to block_min,one_min);
#: the ordering tests assume the full grid and are not selected there.
_BUILDSETS = os.environ.get("REPRO_BENCH_BUILDSETS")
GRID = INTERFACE_GRID if _BUILDSETS is None else tuple(
    row for row in INTERFACE_GRID if row[0] in _BUILDSETS.split(",")
)

_RESULTS = {}


def ordered(isa: str, faster: str, slower: str, slack: float = 1.0) -> bool:
    """Check a speed ordering; on violation, re-measure the two
    configurations back-to-back (shared-machine noise between distant
    cells of the grid is the common cause of spurious inversions)."""
    if _RESULTS[(faster, isa)].mips > _RESULTS[(slower, isa)].mips * slack:
        return True
    again_fast = measure_buildset(isa, faster).mips
    again_slow = measure_buildset(isa, slower).mips
    return again_fast > again_slow * slack


def test_table2_measure(benchmark, publish, publish_json):
    grid = benchmark.pedantic(
        table2,
        kwargs={"isas": ISAS, "buildsets": [b for b, *_ in GRID]},
        rounds=1,
        iterations=1,
    )
    _RESULTS.update(grid)
    rows = []
    for buildset, semantic, info, spec in GRID:
        row = [f"{semantic}/{info}/{spec}"]
        for isa in ISAS:
            row.append(round(grid[(buildset, isa)].mips, 3))
        rows.append(row)
    publish_json(
        "T2",
        {
            "experiment": "table2_simulation_speed",
            "unit": "geomean MIPS over the kernel suite",
            "scale": bench_scale(),
            "mips": {
                buildset: {isa: grid[(buildset, isa)].mips for isa in ISAS}
                for buildset, *_ in GRID
            },
            "samples": {
                buildset: {
                    isa: list(grid[(buildset, isa)].samples) for isa in ISAS
                }
                for buildset, *_ in GRID
            },
        },
    )
    publish(
        "table2_simulation_speed",
        render_table(
            f"Table II (analogue): simulation speed in MIPS "
            f"(geomean over kernels, scale={bench_scale()})",
            ["Interface (sem/info/spec)"] + list(ISAS),
            rows,
            float_format="{:.3f}",
        ),
    )


@pytest.mark.parametrize("isa", ISAS)
def test_semantic_detail_ordering(benchmark, isa):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert _RESULTS, "run test_table2_measure first (file order does this)"
    # Block > One > Step at the same informational level.
    assert ordered(isa, "block_min", "one_min")
    assert ordered(isa, "block_all", "one_all")
    assert ordered(isa, "one_all", "step_all")


@pytest.mark.parametrize("isa", ISAS)
def test_informational_detail_ordering(benchmark, isa):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # More information never helps; allow 10% noise at this scale.
    assert ordered(isa, "block_min", "block_all", slack=0.95)
    assert ordered(isa, "one_min", "one_all", slack=0.9)


@pytest.mark.parametrize("isa", ISAS)
def test_speculation_costs(benchmark, isa):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert ordered(isa, "one_all", "one_all_spec")
    assert ordered(isa, "block_all", "block_all_spec")
    assert ordered(isa, "step_all", "step_all_spec")


@pytest.mark.parametrize("isa", ISAS)
def test_overall_spread_is_large(benchmark, isa):
    """The paper's headline: lowest detail up to 14.4x faster than
    highest.  We require at least ~5x, and report the actual number."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    mips = {bs: _RESULTS[(bs, isa)].mips for bs, *_ in INTERFACE_GRID}
    spread = mips["block_min"] / mips["step_all_spec"]
    print(f"\n{isa}: lowest/highest detail speed ratio = {spread:.1f}x")
    assert spread > 5.0
