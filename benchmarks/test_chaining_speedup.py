"""Experiment A4 — ablation: superblock formation and chaining off.

Paper SV-E credits the Block level's speed to translation scope: the
wider the window the translator sees, the more dispatch overhead it can
eliminate.  Superblock formation (crossing fall-throughs, constant
direct branches and self-loop back-edges at translation time) and
direct block chaining (patching each unit's exits to call its successor
without returning to the dispatch loop) widen that window further; this
experiment measures what they buy.

Gate: the PR-4 acceptance bar is a >= 1.25x geomean MIPS improvement
for ``block_min`` on at least two ISAs over the same build with both
optimizations disabled (``SynthOptions(chain=False, superblock=0)``),
at the same scale.  Because the geomean runs over a fixed kernel set,
the ratio of geomean MIPS equals the geomean of per-kernel ratios.

Shared-machine noise can depress a ratio measured minutes apart, so an
ISA that misses the bar is re-measured once back-to-back before the
gate counts it as failed (same policy as Table II's ``ordered``).
"""

from __future__ import annotations

import os

from repro.harness import bench_scale, measure_buildset, render_table
from repro.synth import SynthOptions

#: both optimizations off; everything else (regcache, DCE, ...) as shipped
OPTIONS_OFF = SynthOptions(chain=False, superblock=0)

#: ISAs measured, overridable for quick local runs
ISAS = tuple(
    os.environ.get("REPRO_BENCH_CHAIN_ISAS", "alpha,arm,ppc").split(",")
)

#: the acceptance bar: geomean speedup and how many ISAs must clear it
MIN_RATIO = float(os.environ.get("REPRO_BENCH_CHAIN_MIN", "1.25"))
MIN_ISAS = 2


def _ratio(isa: str) -> tuple[float, float, float]:
    on = measure_buildset(isa, "block_min").mips
    off = measure_buildset(isa, "block_min", options=OPTIONS_OFF).mips
    return on, off, on / off


def test_chaining_speedup(benchmark, publish, publish_json):
    results = benchmark.pedantic(
        lambda: {isa: _ratio(isa) for isa in ISAS}, rounds=1, iterations=1
    )
    # Re-measure near-miss ISAs back-to-back before judging the gate.
    passing = sum(r[2] >= MIN_RATIO for r in results.values())
    if passing < MIN_ISAS:
        for isa in sorted(ISAS, key=lambda i: -results[i][2]):
            if results[isa][2] < MIN_RATIO:
                results[isa] = _ratio(isa)
        passing = sum(r[2] >= MIN_RATIO for r in results.values())

    publish_json(
        "A4",
        {
            "experiment": "ablation_chaining_superblocks",
            "unit": "geomean MIPS over the kernel suite",
            "buildset": "block_min",
            "scale": bench_scale(),
            "off_options": "chain=False, superblock=0",
            "mips": {
                isa: {"on": on, "off": off, "ratio": ratio}
                for isa, (on, off, ratio) in results.items()
            },
            "gate": {"min_ratio": MIN_RATIO, "min_isas": MIN_ISAS},
        },
    )
    publish(
        "ablation_chaining_superblocks",
        render_table(
            f"Ablation: superblocks + chaining, block_min "
            f"(geomean MIPS, scale={bench_scale()})",
            ["ISA", "on", "off", "speedup"],
            [
                [isa, round(on, 3), round(off, 3), round(ratio, 3)]
                for isa, (on, off, ratio) in results.items()
            ],
            float_format="{:.3f}",
        ),
    )

    # Both optimizations must help everywhere they engage; the hard bar
    # is MIN_RATIO on MIN_ISAS ISAs (ARM's predicated conditionals hide
    # constant branch arms, so it profits least).
    assert all(ratio > 1.0 for _, _, ratio in results.values()), results
    assert passing >= MIN_ISAS, (
        f"geomean speedup >= {MIN_RATIO} on only {passing} ISA(s): {results}"
    )
