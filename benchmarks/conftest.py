"""Shared infrastructure for the experiment-regeneration benchmarks.

Every file in this directory regenerates one table or figure of the
paper (see DESIGN.md section 4 for the index).  Rendered tables are
printed and also written to ``benchmarks/_results/`` so EXPERIMENTS.md
can reference a stable artifact.
"""

import os

import pytest

from repro.isa.base import get_bundle
from repro.synth import SynthOptions, synthesize

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "_results")

ISAS = ("alpha", "arm", "ppc")

_GEN_CACHE = {}


def generator(isa: str, buildset: str, options: SynthOptions | None = None):
    key = (isa, buildset, options)
    if key not in _GEN_CACHE:
        _GEN_CACHE[key] = synthesize(get_bundle(isa).load_spec(), buildset, options)
    return _GEN_CACHE[key]


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def publish(results_dir):
    """Print a rendered table and persist it under _results/."""

    def _publish(name: str, text: str) -> None:
        print("\n" + text)
        with open(os.path.join(results_dir, f"{name}.txt"), "w") as handle:
            handle.write(text + "\n")

    return _publish
