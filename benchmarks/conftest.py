"""Shared infrastructure for the experiment-regeneration benchmarks.

Every file in this directory regenerates one table or figure of the
paper (see DESIGN.md section 4 for the index).  Rendered tables are
printed and also written to ``benchmarks/_results/`` so EXPERIMENTS.md
can reference a stable artifact.
"""

import json
import os

import pytest

from repro.isa.base import get_bundle
from repro.synth import SynthOptions, synthesize

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "_results")

# CI's bench-smoke job narrows this to one ISA for a fast sanity pass.
ISAS = tuple(os.environ.get("REPRO_BENCH_ISAS", "alpha,arm,ppc").split(","))

_GEN_CACHE = {}


def generator(isa: str, buildset: str, options: SynthOptions | None = None):
    key = (isa, buildset, options)
    if key not in _GEN_CACHE:
        _GEN_CACHE[key] = synthesize(get_bundle(isa).load_spec(), buildset, options)
    return _GEN_CACHE[key]


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def publish(results_dir):
    """Print a rendered table and persist it under _results/."""

    def _publish(name: str, text: str) -> None:
        print("\n" + text)
        with open(os.path.join(results_dir, f"{name}.txt"), "w") as handle:
            handle.write(text + "\n")

    return _publish


@pytest.fixture(scope="session")
def publish_json(results_dir):
    """Persist an experiment's raw measurements as BENCH_<exp_id>.json.

    The rendered .txt tables are for humans; these documents are for
    scripts (regression tracking, plotting) and mirror the same numbers
    before any rounding-for-display.
    """

    def _publish_json(exp_id: str, payload: dict) -> None:
        path = os.path.join(results_dir, f"BENCH_{exp_id}.json")
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")

    return _publish_json
