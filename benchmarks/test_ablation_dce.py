"""Experiment A1 — ablation: dead-code elimination off.

DESIGN.md section 3.2 claims the synthesizer's DCE is the mechanism that
makes hidden information free ("computation of information which is not
actually needed ... becomes dead code", paper SIV-A).  The effect is
strongest at Block detail, where decode-time constant propagation leaves
whole chains of dead assignments behind; at One detail on these RISC
subsets nearly every computed value doubles as semantics, so the saving
is small — an honest negative result recorded in EXPERIMENTS.md.
"""

from repro.harness import measure_buildset, render_table
from repro.harness.hostops import hostops_per_instruction
from repro.synth import SynthOptions


def test_dce_ablation(benchmark, publish, publish_json):
    def measure():
        out = {}
        for buildset in ("block_min", "one_min"):
            out[(buildset, True)] = hostops_per_instruction("alpha", buildset)
            out[(buildset, False)] = hostops_per_instruction(
                "alpha", buildset, options=SynthOptions(profile=True, dce=False)
            )
        out["mips_on"] = measure_buildset("alpha", "block_min").mips
        out["mips_off"] = measure_buildset(
            "alpha", "block_min", options=SynthOptions(dce=False)
        ).mips
        return out

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    publish_json(
        "A1",
        {
            "experiment": "ablation_dce",
            "unit": "host ops/instr (hostops) and geomean MIPS (mips)",
            "hostops": {
                "block_min": {
                    "dce_on": results[("block_min", True)],
                    "dce_off": results[("block_min", False)],
                },
                "one_min": {
                    "dce_on": results[("one_min", True)],
                    "dce_off": results[("one_min", False)],
                },
            },
            "mips": {
                "block_min_dce_on": results["mips_on"],
                "block_min_dce_off": results["mips_off"],
            },
        },
    )
    rows = [
        ["block_min", "on", round(results[("block_min", True)], 1)],
        ["block_min", "off", round(results[("block_min", False)], 1)],
        ["one_min", "on", round(results[("one_min", True)], 1)],
        ["one_min", "off", round(results[("one_min", False)], 1)],
    ]
    publish(
        "ablation_dce",
        render_table(
            "Ablation A1: dead-code elimination (Alpha, host ops/instr)",
            ["Interface", "DCE", "host ops/instr"],
            rows,
            float_format="{:.1f}",
        ),
    )
    block_saved = results[("block_min", False)] - results[("block_min", True)]
    one_saved = results[("one_min", False)] - results[("one_min", True)]
    mips_gain = results["mips_on"] / results["mips_off"]
    print(
        f"\nDCE saves {block_saved:.1f} ops/instr at Block/Min "
        f"({mips_gain:.2f}x MIPS) and {one_saved:.1f} at One/Min"
    )
    assert block_saved > 20  # the translator relies on DCE heavily
    assert one_saved >= 0  # never hurts
    assert mips_gain > 1.3
