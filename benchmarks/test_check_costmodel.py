"""Experiment C1 — static cost model vs measured Table III deltas.

:mod:`repro.check.costmodel` predicts each interface's host ops per
simulated instruction from static bytecode lengths alone — no guest
execution.  The claim is not numeric accuracy but *structure*: the
predicted costs-of-detail deltas (decode information, full information,
multiple calls, speculation) must agree in sign with the measured
Table III analogue.  The paper's qualitative result — information and
call-splitting cost host work, speculation is cheap but not free —
is thus recoverable before ever running a workload.

Kept out of tier-1 (this directory is not in ``testpaths``): it
measures real host-op counts, which needs profile builds and a few
seconds per ISA.
"""

from repro.check.costmodel import compare_with_measured
from repro.harness.hostops import CostsOfDetail

#: Fast-but-stable measurement: two kernels at half scale keep the
#: whole experiment under ~10 s while leaving every delta far from 0.
_KERNELS = ("checksum", "sieve")
_SCALE = 0.5

ISAS = ("alpha", "arm", "ppc", "sparc")


def _measured_deltas(isa: str) -> dict[str, float]:
    column = CostsOfDetail.measure(isa, kernels=_KERNELS, scale=_SCALE)
    return {
        "decode": column.incr_decode_info,
        "full": column.incr_full_info,
        "multi_call": column.incr_multiple_calls,
        "speculation": column.incr_speculation,
    }


def test_costmodel_sign_agreement(publish_json):
    reports = {
        isa: compare_with_measured(isa, _measured_deltas(isa)) for isa in ISAS
    }
    publish_json(
        "C1",
        {
            "experiment": "check_costmodel_sign_agreement",
            "unit": "host bytecode ops per simulated instruction (deltas)",
            "reports": reports,
        },
    )
    # Acceptance floor: every Table III-style delta of the Alpha column
    # agrees in sign between the static prediction and the measurement.
    alpha = reports["alpha"]
    assert alpha["comparable"] == 4, alpha
    assert alpha["agreements"] == alpha["comparable"], alpha
    # The structure is not Alpha-specific: every ISA agrees on every row.
    for isa, report in reports.items():
        assert report["agreements"] == report["comparable"], (isa, report)
