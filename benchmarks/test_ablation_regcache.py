"""Experiment A2 — ablation: cross-instruction register caching off.

Paper SV-E attributes the Block-level win to optimization scope: "if a
simulated register value is generated in one simulated instruction and
used in a later instruction, the binary translator may register-allocate
the value."  Disabling our translator's register cache must increase the
host work per instruction (measured deterministically in bytecode ops)
and must not change architectural results.
"""

from repro.harness import measure_buildset, render_table
from repro.harness.hostops import hostops_per_instruction
from repro.synth import SynthOptions


def test_regcache_ablation(benchmark, publish, publish_json):
    def measure():
        return {
            "ops_on": hostops_per_instruction("alpha", "block_min"),
            "ops_off": hostops_per_instruction(
                "alpha", "block_min",
                options=SynthOptions(profile=True, regcache=False),
            ),
            "mips_on": measure_buildset("alpha", "block_min").mips,
            "mips_off": measure_buildset(
                "alpha", "block_min", options=SynthOptions(regcache=False)
            ).mips,
        }

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    publish_json(
        "A2",
        {
            "experiment": "ablation_regcache",
            "unit": "host ops/instr (hostops) and geomean MIPS (mips)",
            "hostops": {"on": results["ops_on"], "off": results["ops_off"]},
            "mips": {"on": results["mips_on"], "off": results["mips_off"]},
        },
    )
    rows = [
        ["on", round(results["ops_on"], 1), round(results["mips_on"], 3)],
        ["off", round(results["ops_off"], 1), round(results["mips_off"], 3)],
    ]
    publish(
        "ablation_regcache",
        render_table(
            "Ablation A2: block register caching (Alpha, Block/Min)",
            ["Register caching", "host ops/instr", "MIPS"],
            rows,
            float_format="{:.3f}",
        ),
    )
    ops_saved = results["ops_off"] - results["ops_on"]
    print(f"\nregister caching saves {ops_saved:.1f} host ops/instruction; "
          f"wall-clock {results['mips_on'] / results['mips_off']:.2f}x")
    # The deterministic host-work win is real but modest in our setting:
    # most of the Block-level advantage comes from dispatch elimination
    # and decode-time constant folding (see EXPERIMENTS.md A2 discussion).
    assert ops_saved > 0.5
    if results["mips_on"] <= results["mips_off"] * 0.85:
        # wall-clock is noisy on shared machines: re-measure head-to-head
        again_on = measure_buildset("alpha", "block_min").mips
        again_off = measure_buildset(
            "alpha", "block_min", options=SynthOptions(regcache=False)
        ).mips
        assert again_on > again_off * 0.85