"""Experiment T1 — Table I: instruction-set characteristics.

Paper values (for orientation; ours is a subset reproduction):
Alpha 1656/317/308 LIS lines, 13 lines per buildset, ~200 instructions;
ARM 2047/225/308, 13, ~40; PowerPC 3805/182/327, 14, ~240.
The claims to reproduce: a complete user-mode description is a few
hundred to a few thousand lines, OS support is a small overlay, and *a
new interface costs about a dozen lines*.
"""

from repro.harness import render_table, table1

from conftest import ISAS


def test_table1(benchmark, publish, publish_json):
    rows_source = benchmark.pedantic(table1, args=(ISAS,), rounds=1, iterations=1)
    publish_json(
        "T1",
        {
            "experiment": "table1_isa_characteristics",
            "unit": "ADL lines excluding comments/blanks",
            "isas": {
                c.isa: {
                    "isa_description_lines": c.isa_description_lines,
                    "os_support_lines": c.os_support_lines,
                    "buildset_lines": c.buildset_lines,
                    "buildsets": c.buildsets,
                    "lines_per_buildset": c.lines_per_buildset,
                    "instructions": c.instructions,
                }
                for c in rows_source
            },
        },
    )
    rows = [
        [
            c.isa,
            c.isa_description_lines,
            c.os_support_lines,
            c.buildset_lines,
            c.buildsets,
            round(c.lines_per_buildset, 1),
            c.instructions,
        ]
        for c in rows_source
    ]
    publish(
        "table1_isa_characteristics",
        render_table(
            "Table I (analogue): instruction set characteristics "
            "(ADL lines excl. comments/blanks)",
            ["ISA", "ISA descr", "OS support", "buildsets", "#ifaces",
             "lines/iface", "#instr"],
            rows,
        ),
    )
    by_isa = {c.isa: c for c in rows_source}
    # Headline claim: an interface costs about a dozen lines of ADL.
    for c in rows_source:
        assert c.lines_per_buildset < 15
    # OS support is a tiny overlay relative to the ISA description.
    for c in rows_source:
        assert c.os_support_lines < c.isa_description_lines / 10
    assert by_isa["alpha"].instructions >= 60
    assert by_isa["ppc"].instructions >= 60
    assert by_isa["arm"].instructions >= 30
